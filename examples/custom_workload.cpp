/**
 * @file
 * Driving the simulator with a user-defined workload: implements
 * srl::isa::UopStream directly (no generator involved) with a
 * blocked matrix-multiply-like kernel — streaming loads from two
 * source arrays, a fused multiply-add chain, and a store per element,
 * with a periodic cold pointer dereference standing in for an index
 * structure that misses to memory.
 *
 * Shows the three integration points a downstream user needs:
 * a UopStream, the load-commit hook, and the stats report.
 */

#include <cstdio>
#include <cstdlib>

#include "core/processor.hh"
#include "core/simulator.hh"

using namespace srl;

namespace
{

/** A hand-rolled kernel stream: C[i] = sum_k A[i,k] * B[k,i]. */
class MatMulStream : public isa::UopStream
{
  public:
    MatMulStream(unsigned n, unsigned block) : n_(n), block_(block) {}

    bool
    next(isa::Uop &out) override
    {
        if (i_ >= n_)
            return false;

        out = isa::Uop{};
        out.seq = seq_++;
        out.pc = 0x8000 + (phase_ % 64) * 4;

        switch (phase_ % 4) {
          case 0: // load A[i,k]
            out.cls = isa::UopClass::kLoad;
            out.dst = 12;
            out.src1 = 0;
            out.effAddr = kA + (i_ * block_ + k_) * 8;
            out.memSize = 8;
            break;
          case 1: // load B[k,i] (strided) — periodically a cold index
            out.cls = isa::UopClass::kLoad;
            out.dst = 13;
            out.src1 = 0;
            out.effAddr = (k_ % 64 == 63)
                              ? kCold + (i_ * 131 + k_) * 64
                              : kB + (k_ * block_ + i_ % block_) * 8;
            out.memSize = 8;
            break;
          case 2: // acc = fma(acc, a, b)
            out.cls = isa::UopClass::kFpMul;
            out.dst = 36;
            out.src1 = 36;
            out.src2 = 12;
            break;
          default: // store C[i] every block_ elements, else advance
            if (k_ + 1 == block_) {
                out.cls = isa::UopClass::kStore;
                out.src1 = 36;
                out.effAddr = kC + i_ * 8;
                out.memSize = 8;
                out.storeData = 0x1000 + i_;
                k_ = 0;
                ++i_;
            } else {
                out.cls = isa::UopClass::kIntAlu;
                out.dst = 4;
                out.src1 = 4;
                ++k_;
            }
            break;
        }
        ++phase_;
        return true;
    }

  private:
    static constexpr Addr kA = 0x1000'0000;
    static constexpr Addr kB = 0x1100'0000;
    static constexpr Addr kC = 0x1200'0000;
    static constexpr Addr kCold = 0x4000'0000;

    unsigned n_, block_;
    unsigned i_ = 0, k_ = 0;
    SeqNum seq_ = 0;
    std::uint64_t phase_ = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const unsigned rows =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4000;

    std::printf("custom matmul-like kernel, %u rows x 32 block\n",
                rows);
    for (const auto &cfg :
         {core::baselineConfig(), core::srlConfig()}) {
        MatMulStream stream(rows, 32);
        core::Processor cpu(cfg, stream);
        std::uint64_t stores_seen = 0;
        cpu.setLoadCommitHook(
            [&](SeqNum, Addr, unsigned, std::uint64_t) {});
        const auto &s = cpu.run(100'000'000);
        (void)stores_seen;
        std::printf("%-16s cycles %9llu  ipc %6.3f  misses %llu  "
                    "redone %llu\n",
                    cfg.name.c_str(),
                    static_cast<unsigned long long>(s.cycles), s.ipc(),
                    static_cast<unsigned long long>(s.mem_misses),
                    static_cast<unsigned long long>(s.redone_stores));
    }
    return 0;
}
