/**
 * @file
 * Design-space exploration: sweeps the SRL organization's free
 * parameters (SRL depth, LCF size and hash, forwarding-cache geometry,
 * load-buffer associativity and overflow policy) on one suite and
 * prints IPC plus the supporting occupancy/stall statistics — the kind
 * of study a microarchitect would run before committing to the paper's
 * chosen configuration.
 *
 * Every point runs in one parallel batch through the sweep runner, so
 * the whole exploration takes roughly one simulation's wall-clock per
 * hardware thread.
 *
 * Usage: design_space [suite] [uops] [jobs] [--json-out FILE]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "runner/sweep.hh"

using namespace srl;

namespace
{

void
report(const stats::RunRecord &r, double base_ipc)
{
    if (r.failed()) {
        std::printf("%-40s  FAILED: %s\n", r.name.c_str(),
                    r.error.c_str());
        return;
    }
    const double ipc = r.metric("ipc");
    std::printf("%-40s  ipc %6.3f  speedup %6.2f%%  occupied %5.1f%%  "
                "stalls/10k %5.1f\n",
                r.name.c_str(), ipc,
                core::percentSpeedup(ipc, base_ipc),
                r.metric("pct_time_srl_occupied"),
                r.metric("srl_stalls_per_10k"));
}

} // namespace

int
main(int argc, char **argv)
{
    // Positional args, plus an optional --json-out FILE anywhere.
    std::string json_out;
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
            json_out = argv[++i];
        } else {
            pos.push_back(argv[i]);
        }
    }
    const std::string suite_name = pos.size() > 0 ? pos[0] : "SFP2K";
    const std::uint64_t uops =
        pos.size() > 1 ? std::strtoull(pos[1], nullptr, 10) : 150000;
    const unsigned jobs =
        pos.size() > 2
            ? static_cast<unsigned>(std::strtoul(pos[2], nullptr, 10))
            : 0;
    const auto suite = workload::suiteProfile(suite_name);

    std::printf("SRL design space on %s (%llu uops)\n",
                suite.name.c_str(),
                static_cast<unsigned long long>(uops));

    // Sections of the study; each names a half-open range of points.
    std::vector<runner::SweepPoint> points;
    std::vector<std::pair<const char *, std::size_t>> sections;
    const auto add = [&](const std::string &name,
                         const core::ProcessorConfig &cfg) {
        points.push_back({name, cfg, suite, uops});
    };

    add("baseline (48-entry STQ)", core::baselineConfig());

    sections.emplace_back("SRL depth", points.size());
    for (const unsigned depth : {128u, 256u, 512u, 1024u}) {
        auto cfg = core::srlConfig();
        cfg.srl.srl.capacity = depth;
        add("srl depth " + std::to_string(depth), cfg);
    }

    sections.emplace_back("LCF size x hash", points.size());
    for (const auto hash : {lsq::HashScheme::kLowerAddressBits,
                            lsq::HashScheme::kThreePieceXor}) {
        for (const unsigned entries : {256u, 1024u, 2048u}) {
            auto cfg = core::srlConfig();
            cfg.srl.lcf.entries = entries;
            cfg.srl.lcf.hash = hash;
            add("lcf " + std::to_string(entries) +
                    (hash == lsq::HashScheme::kLowerAddressBits
                         ? " LAB"
                         : " 3-PAX"),
                cfg);
        }
    }

    sections.emplace_back("forwarding cache geometry", points.size());
    for (const auto &[entries, assoc] :
         {std::pair<unsigned, unsigned>{64, 4},
          std::pair<unsigned, unsigned>{256, 4},
          std::pair<unsigned, unsigned>{256, 8},
          std::pair<unsigned, unsigned>{1024, 8}}) {
        auto cfg = core::srlConfig();
        cfg.srl.fwd_cache = {entries, assoc};
        add("fc " + std::to_string(entries) + "x" +
                std::to_string(assoc),
            cfg);
    }

    sections.emplace_back("load buffer organization", points.size());
    for (const auto &[assoc, policy, victims, name] :
         {std::tuple<unsigned, lsq::OverflowPolicy, unsigned,
                     const char *>{
              4, lsq::OverflowPolicy::kVictimBuffer, 32, "4w+victim"},
          {8, lsq::OverflowPolicy::kVictimBuffer, 32, "8w+victim"},
          {8, lsq::OverflowPolicy::kViolate, 0, "8w violate"}}) {
        auto cfg = core::srlConfig();
        cfg.load_buffer.assoc = assoc;
        cfg.load_buffer.overflow = policy;
        cfg.load_buffer.victim_entries = victims;
        add(name, cfg);
    }

    runner::SweepOptions opts;
    opts.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = runner::runSweep(points, opts);
    const auto t1 = std::chrono::steady_clock::now();

    const stats::RunRecord &base = rep.runs[0];
    if (base.failed()) {
        std::fprintf(stderr, "baseline failed: %s\n",
                     base.error.c_str());
        return 1;
    }
    const double base_ipc = base.metric("ipc");
    std::printf("baseline (48-entry STQ) ipc %.3f\n", base_ipc);

    for (std::size_t si = 0; si < sections.size(); ++si) {
        const std::size_t end = si + 1 < sections.size()
                                    ? sections[si + 1].second
                                    : rep.runs.size();
        std::printf("\n== %s ==\n", sections[si].first);
        for (std::size_t i = sections[si].second; i < end; ++i)
            report(rep.runs[i], base_ipc);
    }

    if (!json_out.empty()) {
        // Same summary shape the bench binaries emit, so the CI perf
        // gate can check this sweep (which, unlike fig6 at --jobs 1,
        // exercises the multi-threaded runner) with the same tool.
        bench::BenchTiming t;
        t.wall_s = std::chrono::duration<double>(t1 - t0).count();
        for (const auto &r : rep.runs) {
            if (r.failed())
                continue;
            t.uops += static_cast<std::uint64_t>(r.metric("uops"));
            t.sim_cycles +=
                static_cast<std::uint64_t>(r.metric("cycles"));
        }
        bench::BenchArgs meta;
        meta.uops = uops;
        meta.suites = {suite};
        meta.jobs = jobs;
        meta.seed = 0;
        bench::writeBenchJson(json_out, "design_space", t, meta);
    }
    return 0;
}
