/**
 * @file
 * Design-space exploration: sweeps the SRL organization's free
 * parameters (SRL depth, LCF size and hash, forwarding-cache geometry,
 * load-buffer associativity and overflow policy) on one suite and
 * prints IPC plus the supporting occupancy/stall statistics — the kind
 * of study a microarchitect would run before committing to the paper's
 * chosen configuration.
 *
 * Usage: design_space [suite] [uops]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simulator.hh"

using namespace srl;

namespace
{

void
report(const char *label, const core::RunResult &r, double base_ipc)
{
    std::printf("%-40s  ipc %6.3f  speedup %6.2f%%  occupied %5.1f%%  "
                "stalls/10k %5.1f\n",
                label, r.ipc, core::percentSpeedup(r.ipc, base_ipc),
                r.pct_time_srl_occupied, r.srl_stalls_per_10k);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string suite_name = argc > 1 ? argv[1] : "SFP2K";
    const std::uint64_t uops =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150000;
    const auto suite = workload::suiteProfile(suite_name);

    std::printf("SRL design space on %s (%llu uops)\n",
                suite.name.c_str(),
                static_cast<unsigned long long>(uops));

    const double base_ipc =
        core::runOne(core::baselineConfig(), suite, uops).ipc;
    std::printf("baseline (48-entry STQ) ipc %.3f\n\n", base_ipc);

    std::printf("== SRL depth ==\n");
    for (const unsigned depth : {128u, 256u, 512u, 1024u}) {
        auto cfg = core::srlConfig();
        cfg.srl.srl.capacity = depth;
        const auto r = core::runOne(cfg, suite, uops);
        char label[64];
        std::snprintf(label, sizeof(label), "srl depth %u", depth);
        report(label, r, base_ipc);
    }

    std::printf("\n== LCF size x hash ==\n");
    for (const auto hash : {lsq::HashScheme::kLowerAddressBits,
                            lsq::HashScheme::kThreePieceXor}) {
        for (const unsigned entries : {256u, 1024u, 2048u}) {
            auto cfg = core::srlConfig();
            cfg.srl.lcf.entries = entries;
            cfg.srl.lcf.hash = hash;
            const auto r = core::runOne(cfg, suite, uops);
            char label[64];
            std::snprintf(label, sizeof(label), "lcf %u %s", entries,
                          hash == lsq::HashScheme::kLowerAddressBits
                              ? "LAB"
                              : "3-PAX");
            report(label, r, base_ipc);
        }
    }

    std::printf("\n== forwarding cache geometry ==\n");
    for (const auto &[entries, assoc] :
         {std::pair<unsigned, unsigned>{64, 4},
          std::pair<unsigned, unsigned>{256, 4},
          std::pair<unsigned, unsigned>{256, 8},
          std::pair<unsigned, unsigned>{1024, 8}}) {
        auto cfg = core::srlConfig();
        cfg.srl.fwd_cache = {entries, assoc};
        const auto r = core::runOne(cfg, suite, uops);
        char label[64];
        std::snprintf(label, sizeof(label), "fc %ux%u", entries, assoc);
        report(label, r, base_ipc);
    }

    std::printf("\n== load buffer organization ==\n");
    for (const auto &[assoc, policy, victims, name] :
         {std::tuple<unsigned, lsq::OverflowPolicy, unsigned,
                     const char *>{
              4, lsq::OverflowPolicy::kVictimBuffer, 32, "4w+victim"},
          {8, lsq::OverflowPolicy::kVictimBuffer, 32, "8w+victim"},
          {8, lsq::OverflowPolicy::kViolate, 0, "8w violate"}}) {
        auto cfg = core::srlConfig();
        cfg.load_buffer.assoc = assoc;
        cfg.load_buffer.overflow = policy;
        cfg.load_buffer.victim_entries = victims;
        const auto r = core::runOne(cfg, suite, uops);
        report(name, r, base_ipc);
    }

    return 0;
}
