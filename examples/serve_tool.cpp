/**
 * @file
 * The sweep daemon: a long-running server that executes design-point
 * simulations on demand over a unix socket, backed by the
 * content-addressed result cache. Start it once, point any number of
 * `sweep_tool --server` clients at it, and identical points simulate
 * exactly once — across clients, across batches, and (through the disk
 * store) across daemon restarts.
 *
 *   serve_tool --socket /tmp/srlsim.sock --cache-dir /tmp/srlsim-cache
 *
 * Options:
 *   --socket PATH      unix socket to listen on (required)
 *   --cache-dir DIR    result store directory (default: in-memory
 *                      coalescing only, nothing persisted)
 *   --jobs N           concurrent simulations (default: all hardware
 *                      threads)
 *   --queue-depth N    max queued jobs before busy backpressure
 *                      (default 64)
 *   --retry-ms N       retry hint sent with busy responses (default 200)
 *   --max-entries N    cap on stored cache entries, oldest evicted
 *                      (default 0 = unbounded)
 *   --ckpt-dir DIR     srlsim-ckpt-v1 checkpoint directory for sampled
 *                      points: shard requests restore from (and save
 *                      into) this store
 *   --sample-jobs N    detail workers per pipelined sampled point
 *                      (DESIGN.md §15); a server-side throughput knob
 *                      only — pipelined results (and cache keys) are
 *                      identical at any value (default 1)
 *   --stats-out FILE   write the service/cache counters report
 *                      (srlsim-stats-v1) on exit
 *
 * SIGTERM / SIGINT trigger a graceful drain: the listener stops
 * accepting, every admitted job runs to completion and delivers its
 * result, connections are closed, and the counters report is written.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/result_cache.hh"
#include "service/server.hh"
#include "service/service.hh"

using namespace srl;

namespace
{

service::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestStop();
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--cache-dir DIR] [--jobs N] "
                 "[--queue-depth N] [--retry-ms N] [--max-entries N] "
                 "[--ckpt-dir DIR] [--sample-jobs N] "
                 "[--stats-out FILE]\n",
                 argv0);
    std::exit(1);
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string cache_dir;
    std::string stats_out;
    service::ServiceOptions svc_opts;
    std::size_t max_entries = 0;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            if (std::strcmp(argv[i], name) != 0 || i + 1 >= argc)
                return static_cast<const char *>(nullptr);
            return static_cast<const char *>(argv[++i]);
        };
        if (const char *v = arg("--socket")) {
            socket_path = v;
        } else if (const char *v = arg("--cache-dir")) {
            cache_dir = v;
        } else if (const char *v = arg("--jobs")) {
            svc_opts.jobs =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--queue-depth")) {
            svc_opts.queue_depth = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--retry-ms")) {
            svc_opts.retry_after_ms =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--max-entries")) {
            max_entries = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--ckpt-dir")) {
            svc_opts.ckpt_dir = v;
        } else if (const char *v = arg("--sample-jobs")) {
            svc_opts.sample_jobs =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--stats-out")) {
            stats_out = v;
        } else {
            usage(argv[0]);
        }
    }
    if (socket_path.empty())
        usage(argv[0]);

    service::ResultCache cache({cache_dir, max_entries});
    service::SweepService svc(cache, svc_opts);
    service::Server server(svc, {socket_path});
    if (!server.start())
        return 1;

    g_server = &server;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);

    std::fprintf(stderr,
                 "serve_tool: listening on %s (cache: %s, jobs: %u)\n",
                 socket_path.c_str(),
                 cache_dir.empty() ? "<none>" : cache_dir.c_str(),
                 svc_opts.jobs);

    const std::uint64_t served = server.run();

    const stats::StatsReport rep = svc.statsReport();
    if (!stats_out.empty())
        writeFile(stats_out, rep.toJson());

    const auto &c = cache.counters();
    std::fprintf(stderr,
                 "serve_tool: drained; %llu connections, "
                 "%llu hits / %llu misses / %llu coalesced\n",
                 static_cast<unsigned long long>(served),
                 static_cast<unsigned long long>(c.hits),
                 static_cast<unsigned long long>(c.misses),
                 static_cast<unsigned long long>(c.coalesced));
    std::remove(socket_path.c_str());
    return 0;
}
