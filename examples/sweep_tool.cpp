/**
 * @file
 * Command-line sweep driver: runs the canonical SRL design-space sweep
 * (baseline, SRL depths, LCF size x hash, hierarchical, ideal — 11
 * points) through the parallel runner and writes a machine-readable
 * stats report.
 *
 *   sweep_tool --jobs 4 --seed 42 --out report.json
 *
 * The JSON report is byte-identical for a fixed (sweep, seed)
 * regardless of --jobs — CI runs the sweep at --jobs 1 and --jobs 4
 * and diffs the two files. Timing and job count are deliberately kept
 * out of the report for that reason; the wall-clock summary goes to
 * stderr. The same identity holds across execution backends: --server
 * and --cache-dir produce the byte-exact report of a direct local run.
 *
 * Options:
 *   --jobs N     worker threads (default: all hardware threads)
 *   --seed S     base RNG seed; 0 keeps suite-canonical seeds
 *   --out FILE   write JSON report ("-" = stdout; default "-")
 *   --csv FILE   also write the CSV rendering
 *   --suite NAME suite to sweep (default SFP2K)
 *   --uops N     uops per run (default 150000)
 *
 * Execution backends (default: simulate locally, nothing cached):
 *   --server SOCK      submit the sweep to a serve_tool daemon on the
 *                      given unix socket instead of simulating here
 *   --cache-dir DIR    simulate locally but memoize each point in a
 *                      content-addressed store; reruns with the same
 *                      (config, suite, uops, seed) replay from disk
 *   --server-stats FILE  after a --server sweep, fetch the daemon's
 *                      service/cache counters and write them here
 *
 * Observability (probe capture rides along with the sweep):
 *   --trace-out FILE    capture one point instrumented and write its
 *                       Chrome/Perfetto trace JSON (srlsim-trace-v1)
 *   --trace-point NAME  which point to trace (default srl-depth-1024)
 *   --sample-every N    counter-timeline period in cycles (default 64)
 *
 * Sampled simulation (two-tier fast-forward + detail; DESIGN.md §14):
 *   --ff N       per-interval pure fast-forward uops
 *   --warm N     per-interval warming fast-forward uops
 *   --detail N   per-interval detailed uops (required when sampling)
 *   --ckpt-dir DIR  save an srlsim-ckpt-v1 checkpoint at each
 *                   detail-segment entry (local runs only; in --server
 *                   mode the daemon's own --ckpt-dir applies)
 * Any of --ff/--warm/--detail marks the sweep sampled: every point
 * runs under that plan (runner::runSampled) instead of fully detailed.
 * Sampling composes with --server (the plan travels in the point
 * specs) but not with --cache-dir or --trace-out.
 *   --sample-jobs N  run each sampled point under the pipelined
 *                    independent-interval engine (DESIGN.md §15) with
 *                    N concurrent detail workers per point. Reports
 *                    are byte-identical at every N >= 1. In --server
 *                    mode the spec is marked pipelined (part of the
 *                    cache key) while the daemon picks its own worker
 *                    count — results are jobs-invariant either way.
 *
 * Traces are captured on the worker threads and are byte-identical
 * regardless of --jobs, so the CI determinism diff covers them too.
 * Tracing is local-only: it cannot be combined with --server or
 * --cache-dir (an instrumented run is not the cacheable artifact).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "runner/sampled.hh"
#include "runner/sweep.hh"
#include "service/client.hh"
#include "service/result_cache.hh"
#include "service/service.hh"

using namespace srl;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--seed S] [--out FILE] "
                 "[--csv FILE] [--suite NAME] [--uops N] "
                 "[--server SOCK] [--cache-dir DIR] "
                 "[--server-stats FILE] "
                 "[--trace-out FILE] [--trace-point NAME] "
                 "[--sample-every N] "
                 "[--ff N] [--warm N] [--detail N] [--ckpt-dir DIR] "
                 "[--sample-jobs N]\n",
                 argv0);
    std::exit(1);
}

void
writeFile(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::fwrite(content.data(), 1, content.size(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        std::exit(1);
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 0;
    std::uint64_t seed = 0;
    std::uint64_t uops = 150000;
    std::string out_path = "-";
    std::string csv_path;
    std::string suite_name = "SFP2K";
    std::string server_socket;
    std::string cache_dir;
    std::string server_stats_path;
    std::string trace_path;
    std::string trace_point = "srl-depth-1024";
    std::uint64_t sample_every = 64;
    std::uint64_t ff_uops = 0;
    std::uint64_t warm_uops = 0;
    std::uint64_t detail_uops = 0;
    std::string ckpt_dir;
    unsigned sample_jobs = 0;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            if (std::strcmp(argv[i], name) != 0 || i + 1 >= argc)
                return static_cast<const char *>(nullptr);
            return static_cast<const char *>(argv[++i]);
        };
        if (const char *v = arg("--jobs")) {
            jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--seed")) {
            seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--out")) {
            out_path = v;
        } else if (const char *v = arg("--csv")) {
            csv_path = v;
        } else if (const char *v = arg("--suite")) {
            suite_name = v;
        } else if (const char *v = arg("--uops")) {
            uops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--server")) {
            server_socket = v;
        } else if (const char *v = arg("--cache-dir")) {
            cache_dir = v;
        } else if (const char *v = arg("--server-stats")) {
            server_stats_path = v;
        } else if (const char *v = arg("--trace-out")) {
            trace_path = v;
        } else if (const char *v = arg("--trace-point")) {
            trace_point = v;
        } else if (const char *v = arg("--sample-every")) {
            sample_every = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--ff")) {
            ff_uops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--warm")) {
            warm_uops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--detail")) {
            detail_uops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--ckpt-dir")) {
            ckpt_dir = v;
        } else if (const char *v = arg("--sample-jobs")) {
            sample_jobs =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else {
            usage(argv[0]);
        }
    }
    const bool sampled = ff_uops || warm_uops || detail_uops;
    if (sampled && detail_uops == 0) {
        std::fprintf(stderr, "sampled sweeps need --detail > 0\n");
        return 1;
    }
    if (sampled && (!cache_dir.empty() || !trace_path.empty())) {
        std::fprintf(stderr,
                     "--ff/--warm/--detail do not compose with "
                     "--cache-dir or --trace-out\n");
        return 1;
    }
    if (sample_jobs > 0 && !sampled) {
        std::fprintf(stderr, "--sample-jobs needs a sampling plan "
                             "(--ff/--warm/--detail)\n");
        return 1;
    }
    if (!ckpt_dir.empty() && !sampled) {
        std::fprintf(stderr, "--ckpt-dir needs a sampling plan "
                             "(--ff/--warm/--detail)\n");
        return 1;
    }
    if (!ckpt_dir.empty() && !server_socket.empty()) {
        std::fprintf(stderr, "--ckpt-dir is local-only; the daemon's "
                             "own --ckpt-dir applies in server mode\n");
        return 1;
    }
    if (!trace_path.empty() &&
        (!server_socket.empty() || !cache_dir.empty())) {
        std::fprintf(stderr, "--trace-out is local-only; drop "
                             "--server/--cache-dir to trace\n");
        return 1;
    }
    if (!server_socket.empty() && !cache_dir.empty()) {
        std::fprintf(stderr,
                     "--server and --cache-dir are exclusive (the "
                     "daemon owns the cache in server mode)\n");
        return 1;
    }

    // The canonical sweep as backend-neutral specs; the same specs
    // drive the local runner, the memoized runner, and the daemon, so
    // all three produce the same report bytes.
    std::vector<service::PointSpec> specs =
        service::canonicalSweepSpecs(suite_name, uops, seed);
    if (sampled) {
        for (auto &s : specs) {
            s.ff_uops = ff_uops;
            s.warm_uops = warm_uops;
            s.detail_uops = detail_uops;
            s.pipelined = sample_jobs > 0;
        }
    }

    workload::SuiteProfile suite;
    std::vector<runner::SweepPoint> points;
    try {
        suite = specs.front().materializeSuite();
        if (server_socket.empty())
            points = service::materializePoints(specs);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    runner::SweepOptions opts;
    opts.jobs = jobs;
    opts.seed = seed;

    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;

    const auto t0 = std::chrono::steady_clock::now();
    stats::StatsReport rep;
    if (!server_socket.empty()) {
        service::Client client;
        if (!client.connect(server_socket))
            return 1;
        try {
            rep = client.runSweep(specs, seed);
            if (!server_stats_path.empty())
                writeFile(server_stats_path,
                          client.fetchStats().toJson());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "server sweep failed: %s\n",
                         e.what());
            return 1;
        }
        cache_hits = client.lastCachedResults();
        cache_misses = client.lastComputedResults();
    } else if (sampled) {
        // One runSampled task per point; runTasks derives the same
        // per-point seeds a detailed sweep would, so a sampled report
        // is comparable row-for-row with the fully detailed one.
        std::vector<runner::Task> tasks;
        tasks.reserve(points.size());
        for (const auto &p : points) {
            tasks.push_back({p.name, [&p, ff_uops, warm_uops,
                                      detail_uops, &ckpt_dir,
                                      sample_jobs](
                                         std::uint64_t run_seed) {
                runner::SampledOptions sopts;
                sopts.plan.ff_uops = ff_uops;
                sopts.plan.warm_uops = warm_uops;
                sopts.plan.detail_uops = detail_uops;
                sopts.ckpt_dir = ckpt_dir;
                sopts.sample_jobs = sample_jobs;
                return runner::runSampled(p.config, p.suite, p.uops,
                                          run_seed, sopts)
                    .record;
            }});
        }
        rep = runner::runTasks(tasks, opts);
    } else if (!cache_dir.empty()) {
        service::ResultCache cache({cache_dir, 0});
        rep = service::runSweepCached(points, opts, cache);
        cache_hits = cache.counters().hits;
        cache_misses = cache.counters().misses;
    } else if (trace_path.empty()) {
        rep = runner::runSweep(points, opts);
    } else {
        obs::ObsConfig capture;
        capture.sample_every = sample_every;
        runner::TracedSweepResult traced = runner::runSweepTraced(
            points, opts, {trace_point}, capture);
        rep = std::move(traced.report);
        if (traced.traces.empty()) {
            std::fprintf(stderr,
                         "--trace-point %s matches no sweep point\n",
                         trace_point.c_str());
            return 1;
        }
        writeFile(trace_path, traced.traces.front().second);
    }
    const auto t1 = std::chrono::steady_clock::now();

    rep.meta["suite"] = suite.name;
    rep.meta["uops"] = std::to_string(uops);

    writeFile(out_path, rep.toJson());
    if (!csv_path.empty())
        writeFile(csv_path, rep.toCsv());

    unsigned failed = 0;
    for (const auto &r : rep.runs)
        failed += r.failed();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    std::fprintf(stderr,
                 "swept %zu points on %s in %.2fs (%u failed)\n",
                 rep.runs.size(), suite.name.c_str(), secs, failed);
    if (!server_socket.empty() || !cache_dir.empty())
        std::fprintf(stderr,
                     "cache: %llu cached / %llu computed\n",
                     static_cast<unsigned long long>(cache_hits),
                     static_cast<unsigned long long>(cache_misses));
    return failed ? 1 : 0;
}
