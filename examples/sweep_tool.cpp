/**
 * @file
 * Command-line sweep driver: runs the canonical SRL design-space sweep
 * (baseline, SRL depths, LCF size x hash, hierarchical, ideal — 11
 * points) through the parallel runner and writes a machine-readable
 * stats report.
 *
 *   sweep_tool --jobs 4 --seed 42 --out report.json
 *
 * The JSON report is byte-identical for a fixed (sweep, seed)
 * regardless of --jobs — CI runs the sweep at --jobs 1 and --jobs 4
 * and diffs the two files. Timing and job count are deliberately kept
 * out of the report for that reason; the wall-clock summary goes to
 * stderr.
 *
 * Options:
 *   --jobs N     worker threads (default: all hardware threads)
 *   --seed S     base RNG seed; 0 keeps suite-canonical seeds
 *   --out FILE   write JSON report ("-" = stdout; default "-")
 *   --csv FILE   also write the CSV rendering
 *   --suite NAME suite to sweep (default SFP2K)
 *   --uops N     uops per run (default 150000)
 *
 * Observability (probe capture rides along with the sweep):
 *   --trace-out FILE    capture one point instrumented and write its
 *                       Chrome/Perfetto trace JSON (srlsim-trace-v1)
 *   --trace-point NAME  which point to trace (default srl-depth-1024)
 *   --sample-every N    counter-timeline period in cycles (default 64)
 *
 * Traces are captured on the worker threads and are byte-identical
 * regardless of --jobs, so the CI determinism diff covers them too.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runner/sweep.hh"

using namespace srl;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--seed S] [--out FILE] "
                 "[--csv FILE] [--suite NAME] [--uops N] "
                 "[--trace-out FILE] [--trace-point NAME] "
                 "[--sample-every N]\n",
                 argv0);
    std::exit(1);
}

void
writeFile(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::fwrite(content.data(), 1, content.size(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        std::exit(1);
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 0;
    std::uint64_t seed = 0;
    std::uint64_t uops = 150000;
    std::string out_path = "-";
    std::string csv_path;
    std::string suite_name = "SFP2K";
    std::string trace_path;
    std::string trace_point = "srl-depth-1024";
    std::uint64_t sample_every = 64;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            if (std::strcmp(argv[i], name) != 0 || i + 1 >= argc)
                return static_cast<const char *>(nullptr);
            return static_cast<const char *>(argv[++i]);
        };
        if (const char *v = arg("--jobs")) {
            jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--seed")) {
            seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--out")) {
            out_path = v;
        } else if (const char *v = arg("--csv")) {
            csv_path = v;
        } else if (const char *v = arg("--suite")) {
            suite_name = v;
        } else if (const char *v = arg("--uops")) {
            uops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--trace-out")) {
            trace_path = v;
        } else if (const char *v = arg("--trace-point")) {
            trace_point = v;
        } else if (const char *v = arg("--sample-every")) {
            sample_every = std::strtoull(v, nullptr, 10);
        } else {
            usage(argv[0]);
        }
    }

    const auto suite = workload::suiteProfile(suite_name);

    std::vector<runner::SweepPoint> points;
    const auto add = [&](const std::string &name,
                         const core::ProcessorConfig &cfg) {
        points.push_back({name, cfg, suite, uops});
    };
    add("baseline", core::baselineConfig());
    for (const unsigned depth : {128u, 256u, 512u, 1024u}) {
        auto cfg = core::srlConfig();
        cfg.srl.srl.capacity = depth;
        add("srl-depth-" + std::to_string(depth), cfg);
    }
    for (const auto &[hname, hash] :
         {std::pair<const char *, lsq::HashScheme>{
              "lab", lsq::HashScheme::kLowerAddressBits},
          std::pair<const char *, lsq::HashScheme>{
              "3pax", lsq::HashScheme::kThreePieceXor}}) {
        for (const unsigned entries : {256u, 2048u}) {
            auto cfg = core::srlConfig();
            cfg.srl.lcf.entries = entries;
            cfg.srl.lcf.hash = hash;
            add("lcf-" + std::to_string(entries) + "-" + hname, cfg);
        }
    }
    add("hierarchical", core::hierarchicalConfig());
    add("ideal-stq", core::idealConfig());

    runner::SweepOptions opts;
    opts.jobs = jobs;
    opts.seed = seed;

    const auto t0 = std::chrono::steady_clock::now();
    stats::StatsReport rep;
    if (trace_path.empty()) {
        rep = runner::runSweep(points, opts);
    } else {
        obs::ObsConfig capture;
        capture.sample_every = sample_every;
        runner::TracedSweepResult traced = runner::runSweepTraced(
            points, opts, {trace_point}, capture);
        rep = std::move(traced.report);
        if (traced.traces.empty()) {
            std::fprintf(stderr,
                         "--trace-point %s matches no sweep point\n",
                         trace_point.c_str());
            return 1;
        }
        writeFile(trace_path, traced.traces.front().second);
    }
    const auto t1 = std::chrono::steady_clock::now();

    rep.meta["suite"] = suite.name;
    rep.meta["uops"] = std::to_string(uops);

    writeFile(out_path, rep.toJson());
    if (!csv_path.empty())
        writeFile(csv_path, rep.toCsv());

    unsigned failed = 0;
    for (const auto &r : rep.runs)
        failed += r.failed();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    std::fprintf(stderr,
                 "swept %zu points on %s in %.2fs (%u failed)\n",
                 rep.runs.size(), suite.name.c_str(), secs, failed);
    return failed ? 1 : 0;
}
