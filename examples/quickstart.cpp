/**
 * @file
 * Quickstart: configure the latency-tolerant processor, run one
 * synthetic workload suite under several store-queue organizations,
 * and print IPC and speedup-over-baseline — the measurement every
 * figure in the paper is built from.
 *
 * Usage: quickstart [suite] [uops]
 *   suite: SFP2K SINT2K WEB MM PROD SERVER WS (default SFP2K)
 *   uops : number of micro-ops to simulate (default 200000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace srl;

    const std::string suite_name = argc > 1 ? argv[1] : "SFP2K";
    const std::uint64_t uops =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    const workload::SuiteProfile suite =
        workload::suiteProfile(suite_name);

    std::vector<core::ProcessorConfig> configs;
    configs.push_back(core::baselineConfig());
    configs.push_back(core::monolithicConfig(128));
    configs.push_back(core::monolithicConfig(256));
    configs.push_back(core::monolithicConfig(512));
    configs.push_back(core::idealConfig());
    configs.push_back(core::hierarchicalConfig());
    configs.push_back(core::srlConfig());

    std::printf("suite %s, %llu uops\n", suite.name.c_str(),
                static_cast<unsigned long long>(uops));
    std::printf("%-20s %10s %10s %9s %8s %8s\n", "config", "cycles",
                "IPC", "speedup%", "misses", "viol");

    double base_ipc = 0.0;
    for (const auto &cfg : configs) {
        const core::RunResult r = core::runOne(cfg, suite, uops);
        if (base_ipc == 0.0)
            base_ipc = r.ipc;
        std::printf("%-20s %10llu %10.3f %9.2f %8llu %8llu"
                    "  [ck %llu stq %llu lq %llu sdb %llu sch %llu rf "
                    "%llu]\n",
                    r.config_name.c_str(),
                    static_cast<unsigned long long>(r.cycles), r.ipc,
                    core::percentSpeedup(r.ipc, base_ipc),
                    static_cast<unsigned long long>(r.stats.mem_misses),
                    static_cast<unsigned long long>(
                        r.stats.mem_violations),
                    static_cast<unsigned long long>(r.stats.stall_ckpt),
                    static_cast<unsigned long long>(r.stats.stall_stq),
                    static_cast<unsigned long long>(r.stats.stall_lq),
                    static_cast<unsigned long long>(r.stats.stall_sdb),
                    static_cast<unsigned long long>(r.stats.stall_sched),
                    static_cast<unsigned long long>(r.stats.stall_rf));
        std::printf("    ovfl-viol %llu  snoop-viol %llu  rollbacks "
                    "total %llu\n",
                    static_cast<unsigned long long>(
                        r.stats.overflow_violations),
                    static_cast<unsigned long long>(
                        r.stats.snoop_violations),
                    static_cast<unsigned long long>(
                        r.stats.mem_violations +
                        r.stats.overflow_violations +
                        r.stats.snoop_violations));
        std::printf("    miss-by-region: hot %llu warm %llu cold %llu "
                    "stream %llu\n",
                    static_cast<unsigned long long>(r.stats.miss_hot),
                    static_cast<unsigned long long>(r.stats.miss_warm),
                    static_cast<unsigned long long>(r.stats.miss_cold),
                    static_cast<unsigned long long>(
                        r.stats.miss_stream));
        std::printf("    drain-block: head %llu fence %llu line %llu\n",
                    static_cast<unsigned long long>(
                        r.stats.drain_block_head),
                    static_cast<unsigned long long>(
                        r.stats.drain_block_fence),
                    static_cast<unsigned long long>(
                        r.stats.drain_block_line));
        if (cfg.model == core::StqModel::kSrl) {
            std::printf(
                "  srl: redone %.1f%%  dep-stores %.1f%%  dep-uops "
                "%.1f%%  stalls/10k %.1f  occupied %.1f%%  "
                "block[head %llu fence %llu line %llu]\n",
                r.pct_stores_redone, r.pct_miss_dep_stores,
                r.pct_miss_dep_uops, r.srl_stalls_per_10k,
                r.pct_time_srl_occupied,
                static_cast<unsigned long long>(
                    r.stats.drain_block_head),
                static_cast<unsigned long long>(
                    r.stats.drain_block_fence),
                static_cast<unsigned long long>(
                    r.stats.drain_block_line));
        }
    }
    return 0;
}
