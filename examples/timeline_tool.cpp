/**
 * @file
 * Observability capture driver: runs one (config, suite) pair with the
 * probe bus and counter sampler attached and writes the captures.
 *
 *   timeline_tool --config srl --suite SFP2K --uops 60000 \
 *       --trace-out trace.json --timeline-out timeline.json \
 *       --csv timeline.csv
 *
 * trace.json is Chrome trace-event JSON (srlsim-trace-v1) — load it at
 * https://ui.perfetto.dev or chrome://tracing. timeline.json is the
 * counter-timeline stats report (srlsim-timeline-v1, one record per
 * sample); the CSV is its wide rendering (one row per sample, one
 * column per gauge) for spreadsheets / gnuplot.
 *
 * A Figure-7 style occupancy summary (percent of occupied samples with
 * SRL occupancy above each paper threshold) goes to stderr.
 *
 * Options:
 *   --config NAME       baseline | srl | hierarchical | ideal
 *                       (default srl)
 *   --suite NAME        workload suite (default SFP2K)
 *   --uops N            uops to run (default 60000)
 *   --seed S            workload seed override; 0 = suite canonical
 *   --srl-depth N       override SRL capacity (srl config only)
 *   --sample-every N    sampling period in cycles (default 64)
 *   --ring-capacity N   probe-event ring capacity (default 65536)
 *   --trace-out FILE    Chrome trace JSON ("-" = stdout)
 *   --timeline-out FILE timeline stats report JSON ("-" = stdout)
 *   --csv FILE          timeline CSV
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/simulator.hh"
#include "obs/export.hh"
#include "workload/profile.hh"

using namespace srl;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--config NAME] [--suite NAME] [--uops N] "
        "[--seed S] [--srl-depth N] [--sample-every N] "
        "[--ring-capacity N] [--trace-out FILE] [--timeline-out FILE] "
        "[--csv FILE]\n",
        argv0);
    std::exit(1);
}

void
writeFile(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::fwrite(content.data(), 1, content.size(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        std::exit(1);
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
}

core::ProcessorConfig
configByName(const std::string &name)
{
    if (name == "baseline")
        return core::baselineConfig();
    if (name == "srl")
        return core::srlConfig();
    if (name == "hierarchical")
        return core::hierarchicalConfig();
    if (name == "ideal")
        return core::idealConfig();
    std::fprintf(stderr,
                 "unknown config %s (want baseline, srl, "
                 "hierarchical or ideal)\n",
                 name.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_name = "srl";
    std::string suite_name = "SFP2K";
    std::uint64_t uops = 60000;
    std::uint64_t seed = 0;
    unsigned srl_depth = 0;
    std::string trace_path;
    std::string timeline_path;
    std::string csv_path;

    obs::ObsConfig capture;
    capture.enabled = true;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            if (std::strcmp(argv[i], name) != 0 || i + 1 >= argc)
                return static_cast<const char *>(nullptr);
            return static_cast<const char *>(argv[++i]);
        };
        if (const char *v = arg("--config")) {
            config_name = v;
        } else if (const char *v = arg("--suite")) {
            suite_name = v;
        } else if (const char *v = arg("--uops")) {
            uops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--seed")) {
            seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--srl-depth")) {
            srl_depth =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--sample-every")) {
            capture.sample_every = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--ring-capacity")) {
            capture.ring_capacity = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--trace-out")) {
            trace_path = v;
        } else if (const char *v = arg("--timeline-out")) {
            timeline_path = v;
        } else if (const char *v = arg("--csv")) {
            csv_path = v;
        } else {
            usage(argv[0]);
        }
    }

    core::ProcessorConfig cfg = configByName(config_name);
    if (srl_depth)
        cfg.srl.srl.capacity = srl_depth;
    const auto suite = workload::suiteProfile(suite_name);

    const core::RunResult r =
        core::runOne(cfg, suite, uops, seed, capture);
    const obs::Recording &rec = *r.recording;

    if (!trace_path.empty())
        writeFile(trace_path, obs::toChromeTrace(rec));
    if (!timeline_path.empty())
        writeFile(timeline_path, obs::timelineReport(rec).toJson());
    if (!csv_path.empty())
        writeFile(csv_path, obs::timelineCsv(rec));

    std::fprintf(stderr,
                 "%s/%s: %llu uops in %llu cycles (ipc %.3f); "
                 "%llu events captured, %llu dropped, %zu samples\n",
                 cfg.name.c_str(), suite.name.c_str(),
                 static_cast<unsigned long long>(r.uops),
                 static_cast<unsigned long long>(r.cycles), r.ipc,
                 static_cast<unsigned long long>(rec.ring.accepted()),
                 static_cast<unsigned long long>(rec.ring.dropped()),
                 rec.sampler.samples().size());

    // Figure-7 style shape check: percent of SRL-occupied samples
    // above each paper threshold (should fall off monotonically).
    if (cfg.model == core::StqModel::kSrl) {
        std::fprintf(stderr, "srl occupancy curve:");
        for (const auto t : core::figure7Thresholds()) {
            std::fprintf(stderr, " >%llu:%.1f%%",
                         static_cast<unsigned long long>(t),
                         obs::percentSamplesAbove(rec, "srl", t));
        }
        std::fprintf(stderr, "\n");
    }
    return 0;
}
