# Empty dependencies file for power_report.
# This may be replaced when dependencies are built.
