file(REMOVE_RECURSE
  "CMakeFiles/power_report.dir/power_report.cpp.o"
  "CMakeFiles/power_report.dir/power_report.cpp.o.d"
  "power_report"
  "power_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
