file(REMOVE_RECURSE
  "CMakeFiles/hazard_replay.dir/hazard_replay.cpp.o"
  "CMakeFiles/hazard_replay.dir/hazard_replay.cpp.o.d"
  "hazard_replay"
  "hazard_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazard_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
