# Empty dependencies file for hazard_replay.
# This may be replaced when dependencies are built.
