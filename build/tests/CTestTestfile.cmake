# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_memsys[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_lsq_store_queue[1]_include.cmake")
include("/root/repo/build/tests/test_lsq_srl[1]_include.cmake")
include("/root/repo/build/tests/test_lsq_filters[1]_include.cmake")
include("/root/repo/build/tests/test_lsq_load_tracking[1]_include.cmake")
include("/root/repo/build/tests/test_cfp[1]_include.cmake")
include("/root/repo/build/tests/test_core_spec_mem[1]_include.cmake")
include("/root/repo/build/tests/test_core_directed[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_core_hierarchical[1]_include.cmake")
include("/root/repo/build/tests/test_debug[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_hazard_matrix[1]_include.cmake")
