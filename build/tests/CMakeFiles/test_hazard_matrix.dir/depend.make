# Empty dependencies file for test_hazard_matrix.
# This may be replaced when dependencies are built.
