file(REMOVE_RECURSE
  "CMakeFiles/test_hazard_matrix.dir/test_hazard_matrix.cc.o"
  "CMakeFiles/test_hazard_matrix.dir/test_hazard_matrix.cc.o.d"
  "test_hazard_matrix"
  "test_hazard_matrix.pdb"
  "test_hazard_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hazard_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
