file(REMOVE_RECURSE
  "CMakeFiles/test_core_directed.dir/test_core_directed.cc.o"
  "CMakeFiles/test_core_directed.dir/test_core_directed.cc.o.d"
  "test_core_directed"
  "test_core_directed.pdb"
  "test_core_directed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
