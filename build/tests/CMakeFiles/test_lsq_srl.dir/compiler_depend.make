# Empty compiler generated dependencies file for test_lsq_srl.
# This may be replaced when dependencies are built.
