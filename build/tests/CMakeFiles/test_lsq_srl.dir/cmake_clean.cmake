file(REMOVE_RECURSE
  "CMakeFiles/test_lsq_srl.dir/test_lsq_srl.cc.o"
  "CMakeFiles/test_lsq_srl.dir/test_lsq_srl.cc.o.d"
  "test_lsq_srl"
  "test_lsq_srl.pdb"
  "test_lsq_srl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsq_srl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
