file(REMOVE_RECURSE
  "CMakeFiles/test_lsq_filters.dir/test_lsq_filters.cc.o"
  "CMakeFiles/test_lsq_filters.dir/test_lsq_filters.cc.o.d"
  "test_lsq_filters"
  "test_lsq_filters.pdb"
  "test_lsq_filters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsq_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
