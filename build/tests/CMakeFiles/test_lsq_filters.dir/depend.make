# Empty dependencies file for test_lsq_filters.
# This may be replaced when dependencies are built.
