file(REMOVE_RECURSE
  "CMakeFiles/test_cfp.dir/test_cfp.cc.o"
  "CMakeFiles/test_cfp.dir/test_cfp.cc.o.d"
  "test_cfp"
  "test_cfp.pdb"
  "test_cfp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
