# Empty dependencies file for test_cfp.
# This may be replaced when dependencies are built.
