# Empty compiler generated dependencies file for test_lsq_load_tracking.
# This may be replaced when dependencies are built.
