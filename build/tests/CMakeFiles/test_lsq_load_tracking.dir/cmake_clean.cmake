file(REMOVE_RECURSE
  "CMakeFiles/test_lsq_load_tracking.dir/test_lsq_load_tracking.cc.o"
  "CMakeFiles/test_lsq_load_tracking.dir/test_lsq_load_tracking.cc.o.d"
  "test_lsq_load_tracking"
  "test_lsq_load_tracking.pdb"
  "test_lsq_load_tracking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsq_load_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
