
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_predictor.cc" "tests/CMakeFiles/test_predictor.dir/test_predictor.cc.o" "gcc" "tests/CMakeFiles/test_predictor.dir/test_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/srl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/srl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cfp/CMakeFiles/srl_cfp.dir/DependInfo.cmake"
  "/root/repo/build/src/lsq/CMakeFiles/srl_lsq.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/srl_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/srl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/srl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/srl_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
