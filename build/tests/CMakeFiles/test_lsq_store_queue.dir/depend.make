# Empty dependencies file for test_lsq_store_queue.
# This may be replaced when dependencies are built.
