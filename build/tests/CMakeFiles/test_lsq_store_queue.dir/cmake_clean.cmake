file(REMOVE_RECURSE
  "CMakeFiles/test_lsq_store_queue.dir/test_lsq_store_queue.cc.o"
  "CMakeFiles/test_lsq_store_queue.dir/test_lsq_store_queue.cc.o.d"
  "test_lsq_store_queue"
  "test_lsq_store_queue.pdb"
  "test_lsq_store_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsq_store_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
