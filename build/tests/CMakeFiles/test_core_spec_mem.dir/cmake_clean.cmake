file(REMOVE_RECURSE
  "CMakeFiles/test_core_spec_mem.dir/test_core_spec_mem.cc.o"
  "CMakeFiles/test_core_spec_mem.dir/test_core_spec_mem.cc.o.d"
  "test_core_spec_mem"
  "test_core_spec_mem.pdb"
  "test_core_spec_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_spec_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
