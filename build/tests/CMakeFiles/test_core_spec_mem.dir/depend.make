# Empty dependencies file for test_core_spec_mem.
# This may be replaced when dependencies are built.
