file(REMOVE_RECURSE
  "CMakeFiles/srl_common.dir/debug.cc.o"
  "CMakeFiles/srl_common.dir/debug.cc.o.d"
  "CMakeFiles/srl_common.dir/logging.cc.o"
  "CMakeFiles/srl_common.dir/logging.cc.o.d"
  "CMakeFiles/srl_common.dir/stats.cc.o"
  "CMakeFiles/srl_common.dir/stats.cc.o.d"
  "libsrl_common.a"
  "libsrl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
