# Empty compiler generated dependencies file for srl_common.
# This may be replaced when dependencies are built.
