file(REMOVE_RECURSE
  "CMakeFiles/srl_workload.dir/generator.cc.o"
  "CMakeFiles/srl_workload.dir/generator.cc.o.d"
  "CMakeFiles/srl_workload.dir/prewarm.cc.o"
  "CMakeFiles/srl_workload.dir/prewarm.cc.o.d"
  "CMakeFiles/srl_workload.dir/profile.cc.o"
  "CMakeFiles/srl_workload.dir/profile.cc.o.d"
  "libsrl_workload.a"
  "libsrl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
