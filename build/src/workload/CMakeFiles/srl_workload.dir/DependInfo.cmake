
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/srl_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/srl_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/prewarm.cc" "src/workload/CMakeFiles/srl_workload.dir/prewarm.cc.o" "gcc" "src/workload/CMakeFiles/srl_workload.dir/prewarm.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/workload/CMakeFiles/srl_workload.dir/profile.cc.o" "gcc" "src/workload/CMakeFiles/srl_workload.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/srl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/srl_memsys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
