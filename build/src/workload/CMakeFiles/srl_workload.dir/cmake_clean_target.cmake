file(REMOVE_RECURSE
  "libsrl_workload.a"
)
