# Empty compiler generated dependencies file for srl_workload.
# This may be replaced when dependencies are built.
