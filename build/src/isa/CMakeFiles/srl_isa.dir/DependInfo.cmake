
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/trace.cc" "src/isa/CMakeFiles/srl_isa.dir/trace.cc.o" "gcc" "src/isa/CMakeFiles/srl_isa.dir/trace.cc.o.d"
  "/root/repo/src/isa/uop.cc" "src/isa/CMakeFiles/srl_isa.dir/uop.cc.o" "gcc" "src/isa/CMakeFiles/srl_isa.dir/uop.cc.o.d"
  "/root/repo/src/isa/validate.cc" "src/isa/CMakeFiles/srl_isa.dir/validate.cc.o" "gcc" "src/isa/CMakeFiles/srl_isa.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
