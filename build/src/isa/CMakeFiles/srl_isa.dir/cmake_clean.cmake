file(REMOVE_RECURSE
  "CMakeFiles/srl_isa.dir/trace.cc.o"
  "CMakeFiles/srl_isa.dir/trace.cc.o.d"
  "CMakeFiles/srl_isa.dir/uop.cc.o"
  "CMakeFiles/srl_isa.dir/uop.cc.o.d"
  "CMakeFiles/srl_isa.dir/validate.cc.o"
  "CMakeFiles/srl_isa.dir/validate.cc.o.d"
  "libsrl_isa.a"
  "libsrl_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
