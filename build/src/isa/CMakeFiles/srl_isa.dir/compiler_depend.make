# Empty compiler generated dependencies file for srl_isa.
# This may be replaced when dependencies are built.
