file(REMOVE_RECURSE
  "libsrl_isa.a"
)
