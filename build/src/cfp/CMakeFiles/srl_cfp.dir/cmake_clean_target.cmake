file(REMOVE_RECURSE
  "libsrl_cfp.a"
)
