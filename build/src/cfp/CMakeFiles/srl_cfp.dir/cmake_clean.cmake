file(REMOVE_RECURSE
  "CMakeFiles/srl_cfp.dir/checkpoint.cc.o"
  "CMakeFiles/srl_cfp.dir/checkpoint.cc.o.d"
  "libsrl_cfp.a"
  "libsrl_cfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_cfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
