# Empty compiler generated dependencies file for srl_cfp.
# This may be replaced when dependencies are built.
