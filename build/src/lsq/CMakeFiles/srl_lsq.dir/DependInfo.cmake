
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsq/fwd_cache.cc" "src/lsq/CMakeFiles/srl_lsq.dir/fwd_cache.cc.o" "gcc" "src/lsq/CMakeFiles/srl_lsq.dir/fwd_cache.cc.o.d"
  "/root/repo/src/lsq/load_buffer.cc" "src/lsq/CMakeFiles/srl_lsq.dir/load_buffer.cc.o" "gcc" "src/lsq/CMakeFiles/srl_lsq.dir/load_buffer.cc.o.d"
  "/root/repo/src/lsq/load_queue.cc" "src/lsq/CMakeFiles/srl_lsq.dir/load_queue.cc.o" "gcc" "src/lsq/CMakeFiles/srl_lsq.dir/load_queue.cc.o.d"
  "/root/repo/src/lsq/srl.cc" "src/lsq/CMakeFiles/srl_lsq.dir/srl.cc.o" "gcc" "src/lsq/CMakeFiles/srl_lsq.dir/srl.cc.o.d"
  "/root/repo/src/lsq/store_queue.cc" "src/lsq/CMakeFiles/srl_lsq.dir/store_queue.cc.o" "gcc" "src/lsq/CMakeFiles/srl_lsq.dir/store_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
