# Empty dependencies file for srl_lsq.
# This may be replaced when dependencies are built.
