file(REMOVE_RECURSE
  "libsrl_lsq.a"
)
