file(REMOVE_RECURSE
  "CMakeFiles/srl_lsq.dir/fwd_cache.cc.o"
  "CMakeFiles/srl_lsq.dir/fwd_cache.cc.o.d"
  "CMakeFiles/srl_lsq.dir/load_buffer.cc.o"
  "CMakeFiles/srl_lsq.dir/load_buffer.cc.o.d"
  "CMakeFiles/srl_lsq.dir/load_queue.cc.o"
  "CMakeFiles/srl_lsq.dir/load_queue.cc.o.d"
  "CMakeFiles/srl_lsq.dir/srl.cc.o"
  "CMakeFiles/srl_lsq.dir/srl.cc.o.d"
  "CMakeFiles/srl_lsq.dir/store_queue.cc.o"
  "CMakeFiles/srl_lsq.dir/store_queue.cc.o.d"
  "libsrl_lsq.a"
  "libsrl_lsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_lsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
