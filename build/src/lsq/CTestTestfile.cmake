# CMake generated Testfile for 
# Source directory: /root/repo/src/lsq
# Build directory: /root/repo/build/src/lsq
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
