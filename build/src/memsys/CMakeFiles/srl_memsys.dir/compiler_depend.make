# Empty compiler generated dependencies file for srl_memsys.
# This may be replaced when dependencies are built.
