file(REMOVE_RECURSE
  "CMakeFiles/srl_memsys.dir/cache.cc.o"
  "CMakeFiles/srl_memsys.dir/cache.cc.o.d"
  "CMakeFiles/srl_memsys.dir/hierarchy.cc.o"
  "CMakeFiles/srl_memsys.dir/hierarchy.cc.o.d"
  "CMakeFiles/srl_memsys.dir/main_memory.cc.o"
  "CMakeFiles/srl_memsys.dir/main_memory.cc.o.d"
  "CMakeFiles/srl_memsys.dir/prefetcher.cc.o"
  "CMakeFiles/srl_memsys.dir/prefetcher.cc.o.d"
  "libsrl_memsys.a"
  "libsrl_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
