
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsys/cache.cc" "src/memsys/CMakeFiles/srl_memsys.dir/cache.cc.o" "gcc" "src/memsys/CMakeFiles/srl_memsys.dir/cache.cc.o.d"
  "/root/repo/src/memsys/hierarchy.cc" "src/memsys/CMakeFiles/srl_memsys.dir/hierarchy.cc.o" "gcc" "src/memsys/CMakeFiles/srl_memsys.dir/hierarchy.cc.o.d"
  "/root/repo/src/memsys/main_memory.cc" "src/memsys/CMakeFiles/srl_memsys.dir/main_memory.cc.o" "gcc" "src/memsys/CMakeFiles/srl_memsys.dir/main_memory.cc.o.d"
  "/root/repo/src/memsys/prefetcher.cc" "src/memsys/CMakeFiles/srl_memsys.dir/prefetcher.cc.o" "gcc" "src/memsys/CMakeFiles/srl_memsys.dir/prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
