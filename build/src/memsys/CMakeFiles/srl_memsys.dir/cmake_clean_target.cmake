file(REMOVE_RECURSE
  "libsrl_memsys.a"
)
