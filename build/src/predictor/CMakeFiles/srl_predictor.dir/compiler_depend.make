# Empty compiler generated dependencies file for srl_predictor.
# This may be replaced when dependencies are built.
