file(REMOVE_RECURSE
  "CMakeFiles/srl_predictor.dir/branch.cc.o"
  "CMakeFiles/srl_predictor.dir/branch.cc.o.d"
  "CMakeFiles/srl_predictor.dir/store_sets.cc.o"
  "CMakeFiles/srl_predictor.dir/store_sets.cc.o.d"
  "libsrl_predictor.a"
  "libsrl_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
