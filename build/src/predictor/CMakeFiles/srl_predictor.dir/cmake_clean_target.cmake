file(REMOVE_RECURSE
  "libsrl_predictor.a"
)
