file(REMOVE_RECURSE
  "libsrl_core.a"
)
