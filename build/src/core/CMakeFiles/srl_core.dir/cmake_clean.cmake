file(REMOVE_RECURSE
  "CMakeFiles/srl_core.dir/config.cc.o"
  "CMakeFiles/srl_core.dir/config.cc.o.d"
  "CMakeFiles/srl_core.dir/processor.cc.o"
  "CMakeFiles/srl_core.dir/processor.cc.o.d"
  "CMakeFiles/srl_core.dir/simulator.cc.o"
  "CMakeFiles/srl_core.dir/simulator.cc.o.d"
  "CMakeFiles/srl_core.dir/spec_mem.cc.o"
  "CMakeFiles/srl_core.dir/spec_mem.cc.o.d"
  "libsrl_core.a"
  "libsrl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
