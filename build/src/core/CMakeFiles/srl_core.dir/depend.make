# Empty dependencies file for srl_core.
# This may be replaced when dependencies are built.
