file(REMOVE_RECURSE
  "libsrl_power.a"
)
