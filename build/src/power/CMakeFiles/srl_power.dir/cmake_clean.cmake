file(REMOVE_RECURSE
  "CMakeFiles/srl_power.dir/model.cc.o"
  "CMakeFiles/srl_power.dir/model.cc.o.d"
  "libsrl_power.a"
  "libsrl_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
