# Empty dependencies file for srl_power.
# This may be replaced when dependencies are built.
