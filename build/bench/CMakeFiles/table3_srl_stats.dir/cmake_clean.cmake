file(REMOVE_RECURSE
  "CMakeFiles/table3_srl_stats.dir/table3_srl_stats.cc.o"
  "CMakeFiles/table3_srl_stats.dir/table3_srl_stats.cc.o.d"
  "table3_srl_stats"
  "table3_srl_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_srl_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
