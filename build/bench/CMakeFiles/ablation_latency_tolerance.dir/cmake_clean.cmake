file(REMOVE_RECURSE
  "CMakeFiles/ablation_latency_tolerance.dir/ablation_latency_tolerance.cc.o"
  "CMakeFiles/ablation_latency_tolerance.dir/ablation_latency_tolerance.cc.o.d"
  "ablation_latency_tolerance"
  "ablation_latency_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latency_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
