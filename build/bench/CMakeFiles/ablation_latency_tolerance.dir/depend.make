# Empty dependencies file for ablation_latency_tolerance.
# This may be replaced when dependencies are built.
