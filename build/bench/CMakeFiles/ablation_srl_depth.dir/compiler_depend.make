# Empty compiler generated dependencies file for ablation_srl_depth.
# This may be replaced when dependencies are built.
