file(REMOVE_RECURSE
  "CMakeFiles/ablation_srl_depth.dir/ablation_srl_depth.cc.o"
  "CMakeFiles/ablation_srl_depth.dir/ablation_srl_depth.cc.o.d"
  "ablation_srl_depth"
  "ablation_srl_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_srl_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
