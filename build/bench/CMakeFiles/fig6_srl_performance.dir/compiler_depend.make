# Empty compiler generated dependencies file for fig6_srl_performance.
# This may be replaced when dependencies are built.
