file(REMOVE_RECURSE
  "CMakeFiles/fig6_srl_performance.dir/fig6_srl_performance.cc.o"
  "CMakeFiles/fig6_srl_performance.dir/fig6_srl_performance.cc.o.d"
  "fig6_srl_performance"
  "fig6_srl_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_srl_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
