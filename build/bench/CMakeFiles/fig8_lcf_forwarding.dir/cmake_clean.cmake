file(REMOVE_RECURSE
  "CMakeFiles/fig8_lcf_forwarding.dir/fig8_lcf_forwarding.cc.o"
  "CMakeFiles/fig8_lcf_forwarding.dir/fig8_lcf_forwarding.cc.o.d"
  "fig8_lcf_forwarding"
  "fig8_lcf_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lcf_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
