# Empty compiler generated dependencies file for fig8_lcf_forwarding.
# This may be replaced when dependencies are built.
