file(REMOVE_RECURSE
  "CMakeFiles/ablation_snoop_traffic.dir/ablation_snoop_traffic.cc.o"
  "CMakeFiles/ablation_snoop_traffic.dir/ablation_snoop_traffic.cc.o.d"
  "ablation_snoop_traffic"
  "ablation_snoop_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_snoop_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
