# Empty dependencies file for ablation_snoop_traffic.
# This may be replaced when dependencies are built.
