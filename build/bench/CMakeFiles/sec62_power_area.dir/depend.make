# Empty dependencies file for sec62_power_area.
# This may be replaced when dependencies are built.
