file(REMOVE_RECURSE
  "CMakeFiles/sec62_power_area.dir/sec62_power_area.cc.o"
  "CMakeFiles/sec62_power_area.dir/sec62_power_area.cc.o.d"
  "sec62_power_area"
  "sec62_power_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_power_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
