file(REMOVE_RECURSE
  "CMakeFiles/fig7_srl_occupancy.dir/fig7_srl_occupancy.cc.o"
  "CMakeFiles/fig7_srl_occupancy.dir/fig7_srl_occupancy.cc.o.d"
  "fig7_srl_occupancy"
  "fig7_srl_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_srl_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
