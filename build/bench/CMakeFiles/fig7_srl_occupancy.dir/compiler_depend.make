# Empty compiler generated dependencies file for fig7_srl_occupancy.
# This may be replaced when dependencies are built.
