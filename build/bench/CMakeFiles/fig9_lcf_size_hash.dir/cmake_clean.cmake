file(REMOVE_RECURSE
  "CMakeFiles/fig9_lcf_size_hash.dir/fig9_lcf_size_hash.cc.o"
  "CMakeFiles/fig9_lcf_size_hash.dir/fig9_lcf_size_hash.cc.o.d"
  "fig9_lcf_size_hash"
  "fig9_lcf_size_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_lcf_size_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
