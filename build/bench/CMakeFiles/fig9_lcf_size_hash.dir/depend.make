# Empty dependencies file for fig9_lcf_size_hash.
# This may be replaced when dependencies are built.
