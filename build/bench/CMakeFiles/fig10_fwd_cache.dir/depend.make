# Empty dependencies file for fig10_fwd_cache.
# This may be replaced when dependencies are built.
