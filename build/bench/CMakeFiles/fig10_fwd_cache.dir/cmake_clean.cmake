file(REMOVE_RECURSE
  "CMakeFiles/fig10_fwd_cache.dir/fig10_fwd_cache.cc.o"
  "CMakeFiles/fig10_fwd_cache.dir/fig10_fwd_cache.cc.o.d"
  "fig10_fwd_cache"
  "fig10_fwd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fwd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
