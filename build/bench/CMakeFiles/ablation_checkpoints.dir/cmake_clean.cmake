file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkpoints.dir/ablation_checkpoints.cc.o"
  "CMakeFiles/ablation_checkpoints.dir/ablation_checkpoints.cc.o.d"
  "ablation_checkpoints"
  "ablation_checkpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
