# Empty dependencies file for ablation_checkpoints.
# This may be replaced when dependencies are built.
