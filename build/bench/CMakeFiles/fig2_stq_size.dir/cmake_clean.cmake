file(REMOVE_RECURSE
  "CMakeFiles/fig2_stq_size.dir/fig2_stq_size.cc.o"
  "CMakeFiles/fig2_stq_size.dir/fig2_stq_size.cc.o.d"
  "fig2_stq_size"
  "fig2_stq_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stq_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
