# Empty dependencies file for fig2_stq_size.
# This may be replaced when dependencies are built.
