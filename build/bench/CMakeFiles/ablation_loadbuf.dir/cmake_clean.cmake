file(REMOVE_RECURSE
  "CMakeFiles/ablation_loadbuf.dir/ablation_loadbuf.cc.o"
  "CMakeFiles/ablation_loadbuf.dir/ablation_loadbuf.cc.o.d"
  "ablation_loadbuf"
  "ablation_loadbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loadbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
