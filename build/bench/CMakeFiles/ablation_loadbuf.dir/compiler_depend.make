# Empty compiler generated dependencies file for ablation_loadbuf.
# This may be replaced when dependencies are built.
