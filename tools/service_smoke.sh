#!/usr/bin/env bash
# End-to-end smoke test of the sweep service: start the daemon, run the
# canonical sweep from several concurrent clients twice, and assert
#   - round 2 is served entirely from the result cache (zero new
#     simulations),
#   - every served report is byte-identical to a direct local
#     runner::runSweep of the same sweep,
#   - SIGTERM drains gracefully (daemon exits 0 and writes its
#     counters report).
#
# Usage: tools/service_smoke.sh <build-dir> [workdir]
# Artifacts (reports, daemon stats, logs) are left in the workdir.
set -euo pipefail

BUILD_DIR=${1:?usage: service_smoke.sh <build-dir> [workdir]}
WORK=${2:-$(mktemp -d /tmp/srlsim-service-smoke-XXXXXX)}
SWEEP="$BUILD_DIR/examples/sweep_tool"
SERVE="$BUILD_DIR/examples/serve_tool"
SOCK="$WORK/daemon.sock"
CLIENTS=4
UOPS=20000
SEED=42

mkdir -p "$WORK"
echo "service_smoke: workdir $WORK"

# Reference: the same sweep, simulated directly.
"$SWEEP" --jobs 2 --seed "$SEED" --uops "$UOPS" \
    --out "$WORK/direct.json" 2> "$WORK/direct.log"

"$SERVE" --socket "$SOCK" --cache-dir "$WORK/cache" --jobs 2 \
    --stats-out "$WORK/daemon-stats.json" 2> "$WORK/daemon.log" &
DAEMON_PID=$!
trap 'kill -9 $DAEMON_PID 2>/dev/null || true' EXIT

for _ in $(seq 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "service_smoke: daemon never bound $SOCK"; exit 1; }

run_round() {
    local round=$1
    local pids=()
    for c in $(seq "$CLIENTS"); do
        "$SWEEP" --seed "$SEED" --uops "$UOPS" --server "$SOCK" \
            --out "$WORK/round$round-client$c.json" \
            2> "$WORK/round$round-client$c.log" &
        pids+=($!)
    done
    for pid in "${pids[@]}"; do
        wait "$pid"
    done
}

echo "service_smoke: round 1 ($CLIENTS concurrent clients, cold cache)"
run_round 1
echo "service_smoke: round 2 (same sweep, must be fully cached)"
run_round 2

# Every client of every round got the byte-exact direct report.
for f in "$WORK"/round*-client*.json; do
    cmp "$WORK/direct.json" "$f" || {
        echo "service_smoke: $f differs from the direct report"
        exit 1
    }
done
echo "service_smoke: all $((CLIENTS * 2)) served reports byte-identical to direct runSweep"

# Round 2 performed zero simulations: every result was cached.
for c in $(seq "$CLIENTS"); do
    grep -q "cache: 11 cached / 0 computed" "$WORK/round2-client$c.log" || {
        echo "service_smoke: round-2 client $c was not fully cached:"
        cat "$WORK/round2-client$c.log"
        exit 1
    }
done
echo "service_smoke: round 2 served 100% from cache (0 simulations)"

# Graceful SIGTERM drain.
kill -TERM "$DAEMON_PID"
DAEMON_RC=0
wait "$DAEMON_PID" || DAEMON_RC=$?
trap - EXIT
if [ "$DAEMON_RC" -ne 0 ]; then
    echo "service_smoke: daemon exited $DAEMON_RC on SIGTERM"
    cat "$WORK/daemon.log"
    exit 1
fi
[ -f "$WORK/daemon-stats.json" ] || {
    echo "service_smoke: daemon wrote no stats report"
    exit 1
}
python3 -m json.tool "$WORK/daemon-stats.json" > /dev/null
echo "service_smoke: daemon drained cleanly; counters:"
cat "$WORK/daemon-stats.json"
echo "service_smoke: PASS"
