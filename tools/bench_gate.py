#!/usr/bin/env python3
"""Performance regression gate for the bench JSON summaries.

Compares a freshly produced benchmark summary (bench binary run with
--json-out, e.g. BENCH_fig6.json) against the committed baseline and
fails when model throughput (uops_per_s) regressed by more than the
allowed fraction. Wall-clock noise is expected on shared CI runners, so
the default tolerance is deliberately loose (15%); the gate exists to
catch order-of-magnitude accidents (a debug build sneaking into CI, an
accidentally quadratic scan), not 2% jitter.

Usage:
    tools/bench_gate.py --fresh BENCH_fig6.json \
        --baseline bench/baselines/BENCH_fig6.json [--max-regress 0.15]

--fresh/--baseline may be repeated (in matching order) to gate several
benchmarks in one invocation; every pair is checked and the gate fails
if any of them regressed.

Rates are recomputed as uops / max(wall_s, --min-wall-s) on both sides:
sub-millisecond measurements (a fully warm cache replay) are mostly
timer noise, and the floor keeps those from gating on it.

Exit status: 0 = pass, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for key in ("uops_per_s", "uops", "wall_s"):
        if key not in data:
            print(f"bench_gate: {path} missing '{key}'", file=sys.stderr)
            sys.exit(2)
    return data


def effective_rate(data, min_wall_s):
    """uops/s with the wall clock floored at min_wall_s.

    Sub-millisecond phases (e.g. a fully warm cache replay) produce
    rates whose denominator is mostly timer/scheduler noise; flooring
    both sides of the comparison at the same minimum wall keeps the
    gate meaningful for them without touching benches that run long
    enough to time honestly.
    """
    wall = max(float(data["wall_s"]), min_wall_s)
    return float(data["uops"]) / wall if wall > 0 else 0.0


def gate_one(fresh_path, base_path, max_regress, min_wall_s):
    """Check one fresh/baseline pair; return True when it passes."""
    fresh = load(fresh_path)
    base = load(base_path)

    if fresh["uops"] != base["uops"]:
        print(f"bench_gate: workload mismatch: fresh simulated "
              f"{fresh['uops']} uops, baseline {base['uops']} — "
              f"refresh the baseline", file=sys.stderr)
        sys.exit(2)

    base_rate = effective_rate(base, min_wall_s)
    fresh_rate = effective_rate(fresh, min_wall_s)
    if base_rate <= 0:
        print("bench_gate: baseline rate is zero", file=sys.stderr)
        sys.exit(2)

    ratio = fresh_rate / base_rate
    verdict = "PASS" if ratio >= 1.0 - max_regress else "FAIL"
    name = fresh.get("bench", fresh_path)
    print(f"bench_gate: {name}: baseline {base_rate:,.0f} uops/s "
          f"({base.get('commit', '?')[:12]}, {base.get('date', '?')}) "
          f"-> fresh {fresh_rate:,.0f} uops/s "
          f"({fresh.get('commit', '?')[:12]}): "
          f"{(ratio - 1.0) * 100:+.1f}% [{verdict}, "
          f"tolerance -{max_regress * 100:.0f}%]")
    return verdict == "PASS"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True, action="append",
                    help="JSON summary from this run (repeatable)")
    ap.add_argument("--baseline", required=True, action="append",
                    help="committed baseline JSON summary (repeatable, "
                         "matched to --fresh in order)")
    ap.add_argument("--max-regress", type=float, default=0.15,
                    help="maximum allowed fractional throughput loss "
                         "(default 0.15)")
    ap.add_argument("--min-wall-s", type=float, default=0.001,
                    help="floor applied to wall_s on both sides before "
                         "computing rates, so sub-millisecond phases "
                         "don't gate on timer noise (default 0.001)")
    args = ap.parse_args()

    if len(args.fresh) != len(args.baseline):
        print(f"bench_gate: {len(args.fresh)} --fresh but "
              f"{len(args.baseline)} --baseline", file=sys.stderr)
        sys.exit(2)

    ok = True
    for fresh_path, base_path in zip(args.fresh, args.baseline):
        ok = gate_one(fresh_path, base_path, args.max_regress,
                      args.min_wall_s) and ok
    if not ok:
        print("bench_gate: model throughput regressed beyond the "
              "tolerance; investigate before merging (or refresh the "
              "baseline if the slowdown is an accepted trade)",
              file=sys.stderr)
        sys.exit(1)
    sys.exit(0)


if __name__ == "__main__":
    main()
