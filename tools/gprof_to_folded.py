#!/usr/bin/env python3
"""Convert a gprof report into folded-stacks flamegraph input.

Reads `gprof -b` output (flat profile + call graph) and writes one
folded line per profiled function, `caller;function weight`, where the
weight is the function's self time in milliseconds. The result feeds
any folded-stacks consumer (flamegraph.pl, speedscope, inferno) the
same way `perf script | stackcollapse-perf.pl` output does.

gprof's call graph only records one level of caller context (and its
timings are propagation estimates), so the stacks here are at most two
frames deep: enough to see *where* self time concentrates and from
which callers, which is what the CI artifact is for. Functions whose
callers gprof cannot attribute (spontaneous roots) fold to a single
frame.

Usage:
    gprof build-prof/bench/fig6_srl_performance gmon.out > prof.txt
    tools/gprof_to_folded.py prof.txt > fig6.folded
"""

import re
import sys


def parse_flat(lines):
    """Self-time (seconds) per function from the flat profile."""
    self_s = {}
    in_flat = False
    for line in lines:
        if line.lstrip().startswith("%") and "cumulative" in line:
            in_flat = True
            continue
        if in_flat:
            if not line.strip():
                in_flat = False
                continue
            # % time  cum-s  self-s  [calls  self-ms  total-ms]  name
            m = re.match(
                r"\s*[\d.]+\s+[\d.]+\s+([\d.]+)\s+(?:[\d]+\s+"
                r"[\d.]+\s+[\d.]+\s+)?(.+?)\s*$", line)
            if m:
                self_s[m.group(2)] = float(m.group(1))
    return self_s


def parse_callers(lines):
    """caller -> callee -> attributed self seconds, from the call graph.

    Within one call-graph entry, the lines above the primary line
    (`[N] ...`) are the callers; each carries the self time gprof
    propagates to that caller.
    """
    attributed = {}
    entry = []
    in_graph = False
    for line in lines:
        if re.match(r"\s*index\s+%\s*time", line):
            in_graph = True
            continue
        if not in_graph:
            continue
        if line.startswith("\x0c"):
            in_graph = False
            continue
        if re.match(r"-+\s*$", line):
            primary = None
            for ln in entry:
                if re.match(r"\[\d+\]", ln.lstrip()):
                    primary = ln
                    break
            if primary is not None:
                pm = re.match(
                    r"\s*\[\d+\]\s+[\d.]+\s+[\d.]+\s+[\d.]+\s+"
                    r"(?:[\d+]+\s+)?(.+?)\s+\[\d+\]", primary)
                if pm:
                    callee = pm.group(1)
                    for ln in entry[:entry.index(primary)]:
                        cm = re.match(
                            r"\s+([\d.]+)\s+[\d.]+\s+(?:[\d/]+\s+)?"
                            r"(.+?)\s+\[\d+\]", ln)
                        if cm and float(cm.group(1)) > 0:
                            attributed.setdefault(callee, {})[
                                cm.group(2)] = float(cm.group(1))
            entry = []
            continue
        entry.append(line)
    return attributed


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1], encoding="utf-8", errors="replace") as f:
        lines = f.readlines()

    self_s = parse_flat(lines)
    callers = parse_callers(lines)
    if not self_s:
        print("gprof_to_folded: no flat profile found (is this "
              "`gprof -b` output?)", file=sys.stderr)
        sys.exit(2)

    emitted = 0
    for func, total in sorted(self_s.items(), key=lambda kv: -kv[1]):
        if total <= 0:
            continue
        by_caller = callers.get(func, {})
        spread = sum(by_caller.values())
        rest = total
        # Scale caller attribution so it never exceeds flat self time
        # (gprof's propagation rounds independently in each section).
        scale = min(1.0, total / spread) if spread > 0 else 0.0
        for caller, secs in sorted(by_caller.items()):
            ms = int(round(secs * scale * 1000))
            if ms > 0:
                print(f"{caller};{func} {ms}")
                rest -= secs * scale
                emitted += 1
        ms = int(round(rest * 1000))
        if ms > 0:
            print(f"{func} {ms}")
            emitted += 1
    if emitted == 0:
        print("gprof_to_folded: profile had no nonzero samples",
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
