#!/usr/bin/env python3
"""Benchmark trajectory report over the committed baselines.

Walks the git history of every bench/baselines/BENCH_*.json file and
emits a per-bench, per-commit table of throughput (uops_per_s), so the
performance trajectory of the repo is readable at a glance instead of
buried in `git log -p`. Each baseline file is read at every commit that
touched it; the row key is the *repo* commit that committed the
baseline (its short hash + subject), and the cells are that bench's
throughput as of that commit.

Usage:
    tools/bench_report.py [--format markdown|csv] [--repo DIR]
        [--baselines-dir bench/baselines] [--out FILE]

With --format markdown (default) the table is GitHub-flavoured
markdown, suitable for pasting into README.md's Performance section
(README embeds the committed snapshot between the
`<!-- bench-report:begin -->` / `<!-- bench-report:end -->` markers;
regenerate with `tools/bench_report.py --update-readme`). CSV emits
one row per (commit, bench) pair for spreadsheet import.

Exit status: 0 = ok, 2 = bad input / not a git repo.
"""

import argparse
import json
import os
import subprocess
import sys

MARK_BEGIN = "<!-- bench-report:begin -->"
MARK_END = "<!-- bench-report:end -->"


def run_git(repo, *args):
    """Run a git command in @repo, returning stdout ('' on failure)."""
    try:
        out = subprocess.run(
            ["git", "-C", repo, *args],
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout
    except (OSError, subprocess.CalledProcessError):
        return ""


def baseline_files(repo, baselines_dir):
    """Baseline JSON paths (repo-relative) known to git, plus any
    currently checked out (a fresh baseline not yet committed shows up
    with commit 'worktree')."""
    tracked = set()
    listing = run_git(repo, "ls-files", baselines_dir)
    for line in listing.splitlines():
        base = os.path.basename(line)
        if base.startswith("BENCH_") and base.endswith(".json"):
            tracked.add(line)
    try:
        for name in os.listdir(os.path.join(repo, baselines_dir)):
            if name.startswith("BENCH_") and name.endswith(".json"):
                tracked.add(os.path.join(baselines_dir, name))
    except OSError:
        pass
    return sorted(tracked)


def history(repo, path):
    """[(commit_hash, short, subject)] touching @path, oldest first."""
    log = run_git(
        repo, "log", "--follow", "--format=%H\x1f%h\x1f%s", "--", path
    )
    rows = []
    for line in log.splitlines():
        parts = line.split("\x1f")
        if len(parts) == 3:
            rows.append(tuple(parts))
    rows.reverse()
    return rows


def show_json(repo, commit, path):
    """Parse @path's JSON as of @commit; None when unreadable."""
    blob = run_git(repo, "show", f"{commit}:{path}")
    if not blob:
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def read_worktree_json(repo, path):
    try:
        with open(os.path.join(repo, path), encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def collect(repo, baselines_dir):
    """Gather the trajectory.

    Returns (bench_names, rows) where rows is a list of
    {"commit": short, "subject": str, "order": int,
     "cells": {bench: uops_per_s}} oldest first — one row per repo
    commit that changed at least one baseline.
    """
    commit_order = {}  # full hash -> position in repo history
    full_log = run_git(repo, "log", "--reverse", "--format=%H")
    for i, line in enumerate(full_log.splitlines()):
        commit_order[line] = i

    benches = []
    rows_by_commit = {}

    def row_for(full, short, subject, order):
        if full not in rows_by_commit:
            rows_by_commit[full] = {
                "commit": short,
                "subject": subject,
                "order": order,
                "cells": {},
            }
        return rows_by_commit[full]

    for path in baseline_files(repo, baselines_dir):
        committed = False
        for full, short, subject in history(repo, path):
            data = show_json(repo, full, path)
            if data is None or "uops_per_s" not in data:
                continue
            committed = True
            bench = data.get(
                "bench",
                os.path.basename(path)[len("BENCH_") : -len(".json")],
            )
            if bench not in benches:
                benches.append(bench)
            row = row_for(
                full, short, subject, commit_order.get(full, 1 << 30)
            )
            row["cells"][bench] = float(data["uops_per_s"])
        if not committed:
            data = read_worktree_json(repo, path)
            if data is None or "uops_per_s" not in data:
                continue
            bench = data.get(
                "bench",
                os.path.basename(path)[len("BENCH_") : -len(".json")],
            )
            if bench not in benches:
                benches.append(bench)
            row = row_for("WORKTREE", "worktree", "(uncommitted)", 1 << 31)
            row["cells"][bench] = float(data["uops_per_s"])

    rows = sorted(rows_by_commit.values(), key=lambda r: r["order"])
    return sorted(benches), rows


def fmt_rate(v):
    if v is None:
        return ""
    if v >= 1e6:
        return f"{v / 1e6:.2f}M"
    if v >= 1e3:
        return f"{v / 1e3:.1f}k"
    return f"{v:.0f}"


def to_markdown(benches, rows):
    lines = []
    header = ["commit", "change"] + benches
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join(["---"] * len(header)) + "|")
    for row in rows:
        subject = row["subject"]
        if len(subject) > 48:
            subject = subject[:45] + "..."
        cells = [row["commit"], subject]
        for b in benches:
            cells.append(fmt_rate(row["cells"].get(b)))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    lines.append(
        "Cells are model throughput (uops/s) from the committed "
        "`bench/baselines/BENCH_*.json` at that commit; blank = bench "
        "did not exist yet. Regenerate with `tools/bench_report.py`."
    )
    return "\n".join(lines) + "\n"


def to_csv(benches, rows):
    lines = ["commit,subject,bench,uops_per_s"]
    for row in rows:
        subject = row["subject"].replace('"', '""')
        for b in benches:
            v = row["cells"].get(b)
            if v is None:
                continue
            lines.append(f'{row["commit"]},"{subject}",{b},{v}')
    return "\n".join(lines) + "\n"


def update_readme(repo, table):
    path = os.path.join(repo, "README.md")
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"bench_report: cannot read README.md: {e}", file=sys.stderr)
        return False
    begin = text.find(MARK_BEGIN)
    end = text.find(MARK_END)
    if begin < 0 or end < 0 or end < begin:
        print(
            f"bench_report: README.md lacks {MARK_BEGIN}/{MARK_END} "
            "markers",
            file=sys.stderr,
        )
        return False
    new = (
        text[: begin + len(MARK_BEGIN)]
        + "\n"
        + table
        + text[end:]
    )
    with open(path, "w", encoding="utf-8") as f:
        f.write(new)
    return True


def main():
    ap = argparse.ArgumentParser(
        description="Per-bench per-commit throughput trajectory "
        "from the committed baselines."
    )
    ap.add_argument(
        "--format", choices=("markdown", "csv"), default="markdown"
    )
    ap.add_argument("--repo", default=".")
    ap.add_argument("--baselines-dir", default="bench/baselines")
    ap.add_argument("--out", default="-", help="output file ('-' = stdout)")
    ap.add_argument(
        "--update-readme",
        action="store_true",
        help="rewrite the table between the bench-report markers "
        "in README.md (markdown format only)",
    )
    args = ap.parse_args()

    if not run_git(args.repo, "rev-parse", "--git-dir"):
        print(f"bench_report: {args.repo} is not a git repo", file=sys.stderr)
        return 2

    benches, rows = collect(args.repo, args.baselines_dir)
    if not benches:
        print("bench_report: no baselines found", file=sys.stderr)
        return 2

    table = (
        to_markdown(benches, rows)
        if args.format == "markdown"
        else to_csv(benches, rows)
    )

    if args.update_readme:
        if args.format != "markdown":
            print(
                "bench_report: --update-readme needs markdown",
                file=sys.stderr,
            )
            return 2
        return 0 if update_readme(args.repo, table) else 2

    if args.out == "-":
        sys.stdout.write(table)
    else:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
